#include "harness/shard_runner.h"

#include <csignal>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "base/logging.h"
#include "harness/runner.h"
#include "sim/topology.h"
#include "swarm/machine.h"
#include "swarm/shard.h"
#include "swarm/wire.h"

namespace ssim::harness {

void
resolveTopology(SimConfig& cfg)
{
    if (cfg.topology) {
        ssim_assert(cfg.topology->ntiles == cfg.ntiles,
                    "injected topology covers %u tiles but the config "
                    "has %u",
                    cfg.topology->ntiles, cfg.ntiles);
        if (cfg.numShards > 1)
            ssim_assert(cfg.topology->numShards() == cfg.numShards,
                        "injected topology has %u shards but "
                        "numShards is %u",
                        cfg.topology->numShards(), cfg.numShards);
        return;
    }
    if (!cfg.topologyFile.empty()) {
        std::ifstream in(cfg.topologyFile);
        if (!in.good())
            fatal("cannot open topology file '%s'",
                  cfg.topologyFile.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        auto topo = std::make_shared<TopologySpec>();
        std::string err;
        if (!topo->parse(ss.str(), &err))
            fatal("malformed topology file '%s': %s",
                  cfg.topologyFile.c_str(), err.c_str());
        if (topo->ntiles != cfg.ntiles)
            fatal("topology file '%s' covers %u tiles but the config "
                  "has %u",
                  cfg.topologyFile.c_str(), topo->ntiles, cfg.ntiles);
        if (cfg.numShards > 1 && topo->numShards() != cfg.numShards)
            fatal("topology file '%s' has %u shards but numShards is %u",
                  cfg.topologyFile.c_str(), topo->numShards(),
                  cfg.numShards);
        cfg.topology = std::move(topo);
        return;
    }
    if (cfg.numShards > cfg.ntiles) {
        // A global SWARMSIM_SHARDS can meet a sweep's smallest configs
        // (a 1-tile machine cannot split): clamp rather than die, so
        // the knob composes with core sweeps. Explicit topology files
        // above stay fatal on any mismatch.
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("clamping numShards %u to the machine's %u tile(s)",
                 cfg.numShards, cfg.ntiles);
        }
        cfg.numShards = cfg.ntiles;
    }
    if (cfg.numShards > 1)
        cfg.topology = std::make_shared<TopologySpec>(
            TopologySpec::uniform(cfg.ntiles, cfg.numShards));
}

std::string
topologyKeyOf(const SimConfig& cfg)
{
    if (!cfg.topology)
        return "single";
    return cfg.topology->key() + ":hop" +
           std::to_string(cfg.shardHopPenalty);
}

namespace {

/// Kill and reap every still-running child (failure path cleanup so a
/// fatal in the parent never strands shard processes).
void
killShards(const std::vector<pid_t>& pids)
{
    for (pid_t p : pids) {
        if (p <= 0)
            continue;
        kill(p, SIGKILL);
        waitpid(p, nullptr, 0);
    }
}

bool
progressEqual(const WireProgress& a, const WireProgress& b)
{
    return a.epoch == b.epoch && a.cycle == b.cycle &&
           a.gvtTs == b.gvtTs && a.gvtUid == b.gvtUid &&
           a.hasGvt == b.hasGvt;
}

} // namespace

ShardedRunOutcome
runShardedRaw(const SimConfig& cfg,
              const std::function<void(Machine&)>& setup,
              const std::function<uint64_t()>& result_digest,
              const std::function<bool()>& validate)
{
    ssim_assert(cfg.topology, "runShardedRaw needs an armed topology "
                              "(resolveTopology)");
    const uint32_t n = cfg.numShards;
    ssim_assert(n >= 2 && cfg.topology->numShards() == n,
                "runShardedRaw needs numShards == topology shards >= 2");

    ShardGroup group(n);

    // Fork AFTER the caller finished app setup: copy-on-write hands
    // every replica a bit-identical heap at identical addresses, so
    // the task function pointers and app data the wire records carry
    // resolve identically in every process.
    std::fflush(stdout);
    std::fflush(stderr);
    std::vector<pid_t> pids(n, -1);
    for (uint32_t s = 0; s < n; s++) {
        pid_t pid = fork();
        if (pid < 0) {
            killShards(pids);
            fatal("fork failed for shard %u", s);
        }
        if (pid == 0) {
            // Child: one replica of the deterministic event loop.
            // Parallel-host modes are disabled — the wire protocol's
            // record cadence is defined against the serial loop.
            SimConfig childCfg = cfg;
            childCfg.hostThreads = 1;
            childCfg.concurrentConflicts = false;
            childCfg.parallelReplay = false;
            ShardContext ctx(*cfg.topology, s, group);
            Machine m(childCfg, &ctx);
            setup(m);
            m.run();
            ShardSnapshot snap;
            snap.shard = s;
            snap.valid = validate() ? 1 : 0;
            snap.stats = m.stats();
            snap.statsDigest = statsDigest(snap.stats);
            snap.resultDigest = result_digest();
            group.publishResult(s, snap.serialize());
            std::fflush(stdout);
            std::fflush(stderr);
            _exit(0);
        }
        pids[s] = pid;
    }

    // Parent: the GVT reducer. Drain every shard's progress ring,
    // align reports by arrival index (every replica emits the same
    // epochs in the same order), and fail fast on disagreement — the
    // cross-replica invariant check that a real (TCP) reduction would
    // replace with an actual min-reduction.
    ShardedRunOutcome out;
    std::vector<std::deque<WireProgress>> prog(n);
    uint32_t alive = n;
    auto drainAndCheck = [&] {
        for (uint32_t s = 0; s < n; s++) {
            WireProgress p;
            while (group.progressRing(s).tryPop(p))
                prog[s].push_back(p);
        }
        while (true) {
            bool allHave = true;
            for (uint32_t s = 0; s < n; s++)
                allHave = allHave && !prog[s].empty();
            if (!allHave)
                break;
            const WireProgress& ref = prog[0].front();
            for (uint32_t s = 1; s < n; s++) {
                if (!progressEqual(ref, prog[s].front())) {
                    const WireProgress& bad = prog[s].front();
                    killShards(pids);
                    fatal("sharded run diverged: shard 0 reported epoch "
                          "%llu cycle %llu gvt=(%llu,%llu,%u) but shard "
                          "%u reported epoch %llu cycle %llu "
                          "gvt=(%llu,%llu,%u)",
                          (unsigned long long)ref.epoch,
                          (unsigned long long)ref.cycle,
                          (unsigned long long)ref.gvtTs,
                          (unsigned long long)ref.gvtUid, ref.hasGvt, s,
                          (unsigned long long)bad.epoch,
                          (unsigned long long)bad.cycle,
                          (unsigned long long)bad.gvtTs,
                          (unsigned long long)bad.gvtUid, bad.hasGvt);
                }
            }
            for (uint32_t s = 0; s < n; s++)
                prog[s].pop_front();
            out.progressEpochsChecked++;
        }
    };
    while (alive > 0) {
        drainAndCheck();
        bool reaped = false;
        for (uint32_t s = 0; s < n; s++) {
            if (pids[s] <= 0)
                continue;
            int status = 0;
            pid_t r = waitpid(pids[s], &status, WNOHANG);
            if (r == 0)
                continue;
            pids[s] = -1;
            alive--;
            reaped = true;
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
                killShards(pids);
                fatal("shard %u died (%s %d) before publishing its "
                      "snapshot",
                      s, WIFSIGNALED(status) ? "signal" : "status",
                      WIFSIGNALED(status) ? WTERMSIG(status)
                                          : WEXITSTATUS(status));
            }
        }
        if (!reaped && alive > 0)
            usleep(1000); // children own the cores; poll gently
    }
    drainAndCheck();
    for (uint32_t s = 0; s < n; s++)
        if (!prog[s].empty())
            fatal("sharded run diverged: shard %u reported %zu more "
                  "progress epochs than its peers",
                  s, prog[s].size());

    // Reduce the snapshots: strict parse, then hard-gate cross-replica
    // equality — a replicated state machine that ran correctly cannot
    // disagree on a single stats bit.
    std::vector<ShardSnapshot> snaps(n);
    for (uint32_t s = 0; s < n; s++) {
        std::string text = group.takeResult(s);
        if (text.empty())
            fatal("shard %u exited without publishing a snapshot", s);
        std::string err;
        if (!snaps[s].parse(text, &err))
            fatal("shard %u published a malformed snapshot: %s", s,
                  err.c_str());
        if (snaps[s].shard != s)
            fatal("shard %u published a snapshot labeled shard %u", s,
                  snaps[s].shard);
        if (statsDigest(snaps[s].stats) != snaps[s].statsDigest)
            fatal("shard %u snapshot stats do not hash to its declared "
                  "digest",
                  s);
    }
    for (uint32_t s = 1; s < n; s++) {
        if (snaps[s].statsDigest != snaps[0].statsDigest)
            fatal("sharded run diverged: shard %u stats digest %016llx "
                  "!= shard 0's %016llx",
                  s, (unsigned long long)snaps[s].statsDigest,
                  (unsigned long long)snaps[0].statsDigest);
        if (snaps[s].resultDigest != snaps[0].resultDigest)
            fatal("sharded run diverged: shard %u result digest %016llx "
                  "!= shard 0's %016llx",
                  s, (unsigned long long)snaps[s].resultDigest,
                  (unsigned long long)snaps[0].resultDigest);
        if (snaps[s].valid != snaps[0].valid)
            fatal("sharded run diverged: shard %u validation disagrees "
                  "with shard 0's",
                  s);
    }
    out.valid = snaps[0].valid != 0;
    out.statsDigest = snaps[0].statsDigest;
    out.resultDigest = snaps[0].resultDigest;
    out.stats = snaps[0].stats;
    return out;
}

RunResult
runSharded(apps::App& app, const SimConfig& cfg)
{
    app.reset();
    ShardedRunOutcome out = runShardedRaw(
        cfg, [&](Machine& m) { app.enqueueInitial(m); },
        [&] { return app.resultDigest(); }, [&] { return app.validate(); });
    RunResult r;
    r.cores = cfg.totalCores();
    r.sched = cfg.sched;
    r.valid = out.valid;
    r.stats = out.stats;
    r.resultDigest = out.resultDigest;
    return r;
}

} // namespace ssim::harness
