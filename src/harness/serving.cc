#include "harness/serving.h"

#include <cstdlib>
#include <memory>

#include "base/fixmath.h"
#include "base/logging.h"
#include "base/rng.h"
#include "harness/classifier.h"
#include "harness/cli.h"
#include "harness/runner.h"
#include "swarm/classification.h"
#include "swarm/machine.h"

namespace ssim::harness {

const char*
arrivalKindName(ArrivalKind k)
{
    switch (k) {
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Uniform: return "uniform";
      case ArrivalKind::Bursty: return "bursty";
    }
    return "?";
}

ArrivalKind
parseArrivalKind(const std::string& name)
{
    if (name == "poisson")
        return ArrivalKind::Poisson;
    if (name == "uniform")
        return ArrivalKind::Uniform;
    if (name == "bursty")
        return ArrivalKind::Bursty;
    fatal("unknown arrival kind '%s' (poisson|uniform|bursty)",
          name.c_str());
}

std::vector<Cycle>
generateArrivals(ArrivalKind kind, uint64_t requests, uint64_t mean_gap,
                 uint64_t seed)
{
    ssim_assert(mean_gap >= 1, "mean inter-arrival gap must be >= 1");
    Rng rng(seed);
    std::vector<Cycle> out;
    out.reserve(requests);
    Cycle t = 0;
    /// 16-request hot/cold phases for the bursty shape; hot gaps run at
    /// mean/4, cold at 7*mean/4, so the overall mean stays mean_gap.
    constexpr uint64_t kBurstLen = 16;
    for (uint64_t i = 0; i < requests; i++) {
        uint64_t gap;
        switch (kind) {
          case ArrivalKind::Uniform:
            gap = mean_gap;
            break;
          case ArrivalKind::Bursty: {
            bool hot = (i / kBurstLen) % 2 == 0;
            uint64_t mean = hot ? mean_gap / 4 : mean_gap * 7 / 4;
            gap = fxScaleU64(mean ? mean : 1,
                             fxExpVariateQ32(rng.next()));
            break;
          }
          default: // Poisson
            gap = fxScaleU64(mean_gap, fxExpVariateQ32(rng.next()));
            break;
        }
        t += gap ? gap : 1;
        out.push_back(t);
    }
    return out;
}

// ---- LatencyRecorder -------------------------------------------------------

uint32_t
LatencyRecorder::bucketOf(uint64_t v)
{
    if (v < kLinearMax)
        return uint32_t(v);
    uint32_t e = 63 - uint32_t(__builtin_clzll(v));
    uint32_t sub = uint32_t(v >> (e - kSubBits)) & (kSub - 1);
    return kLinearMax + (e - kSubBits) * kSub + sub;
}

uint64_t
LatencyRecorder::bucketUpper(uint32_t b)
{
    if (b < kLinearMax)
        return b;
    uint32_t rel = b - kLinearMax;
    uint32_t e = kSubBits + rel / kSub;
    uint32_t sub = rel % kSub;
    // Top bucket's upper bound wraps to 0; the unsigned -1 saturates it.
    return (uint64_t(kSub + sub + 1) << (e - kSubBits)) - 1;
}

void
LatencyRecorder::record(uint64_t v)
{
    counts_[bucketOf(v)]++;
    count_++;
    if (v > max_)
        max_ = v;
}

uint64_t
LatencyRecorder::percentile(uint32_t permille) const
{
    if (!count_)
        return 0;
    uint64_t rank = (count_ * permille + 999) / 1000;
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;
    uint64_t cum = 0;
    for (uint32_t b = 0; b < kNumBuckets; b++) {
        cum += counts_[b];
        if (cum >= rank) {
            uint64_t u = bucketUpper(b);
            return u < max_ ? u : max_;
        }
    }
    return max_;
}

uint64_t
LatencyRecorder::digest() const
{
    uint64_t h = fnv1aU64(count_, kFnvBasis);
    for (uint32_t b = 0; b < kNumBuckets; b++)
        if (counts_[b]) {
            h = fnv1aU64(b, h);
            h = fnv1aU64(counts_[b], h);
        }
    return h;
}

// ---- serveOnce -------------------------------------------------------------

namespace {

/// Commit tap: attributes every committed task to the request owning
/// its timestamp range and keeps the LAST commit cycle seen per request
/// — commits are driven in global timestamp order at deterministic
/// cycles, so the final value is the request's completion cycle.
class ServeTap : public AccessProfiler
{
  public:
    ServeTap(Machine& m, uint64_t span, std::vector<Cycle>& completion)
        : m_(m), span_(span), completion_(completion)
    {
    }

    void
    onCommit(const Task& t) override
    {
        if (t.ts < span_)
            return; // below every request's range (no owner)
        uint64_t req = t.ts / span_ - 1;
        if (req < completion_.size())
            completion_[req] = m_.now();
    }

  private:
    Machine& m_;
    uint64_t span_;
    std::vector<Cycle>& completion_;
};

} // namespace

ServingResult
serveOnce(apps::App& app, const SimConfig& cfg, const ServingConfig& scfg)
{
    app.reset();
    SimConfig hostCfg = cfg;
    // Same env-only override pass as runOnce (harness/cli.h).
    applyHostThreads(hostCfg);
    applyBackend(hostCfg);
    applyConcConflicts(hostCfg);
    applyParallelReplay(hostCfg);
    applyClassify(hostCfg);
    applyTrace(hostCfg);
    if (hostCfg.classifyMode == "profile" && !hostCfg.classifyMap) {
        // Profile-guided classification: the pre-run profiles a
        // closed-loop run of the same workload (identical footprint,
        // identical timestamp order — arrivals only shift cycles).
        SimConfig profCfg = hostCfg;
        profCfg.classifyMode = "off";
        AccessClassifier cls;
        Machine pm(profCfg);
        pm.setProfiler(&cls);
        app.enqueueInitial(pm);
        pm.run();
        hostCfg.classifyMap = std::make_shared<ClassificationMap>(
            cls.buildMap(app.reductionRanges()));
        app.reset();
    }
    // Trace record pre-run under backend=trace-replay, mirroring the
    // classify pre-run above: closed-loop, so the recorded streams cover
    // the same task types and lines the injected requests touch
    // (injecting all requests reproduces closed-loop state by the
    // ServingProfile contract); arrival-time-only keys fall back.
    prepareTraceReplay(app, hostCfg);

    const apps::App::ServingProfile prof = app.servingProfile();
    ssim_assert(prof.requests > 0 && prof.tsSpan > 0,
                "app '%s' is not servable", app.name().c_str());
    std::vector<Cycle> arrivals = generateArrivals(
        scfg.arrivals, prof.requests, scfg.meanGapCycles, scfg.seed);

    Machine m(hostCfg);
    std::vector<Cycle> completion(prof.requests, 0);
    ServeTap tap(m, prof.tsSpan, completion);
    m.setProfiler(&tap);

    // One global-lane event per request at its arrival cycle; the
    // capture (machine, app, index) fits the event's inline buffer.
    Machine* mp = &m;
    apps::App* ap = &app;
    for (uint64_t i = 0; i < prof.requests; i++)
        m.scheduleAt(arrivals[i],
                     [mp, ap, i] { ap->injectRequest(*mp, i); });
    m.run();

    ServingResult r;
    r.requests = prof.requests;
    r.cycles = m.stats().cycles;
    r.lastArrival = arrivals.back();
    for (uint64_t i = 0; i < prof.requests; i++) {
        ssim_assert(completion[i] >= arrivals[i],
                    "request %llu never completed",
                    (unsigned long long)i);
        uint64_t lat = completion[i] - arrivals[i];
        r.latency.record(lat);
        if (scfg.deadlineCycles && lat > scfg.deadlineCycles)
            r.deadlineMisses++;
    }
    r.p50 = r.latency.percentile(500);
    r.p99 = r.latency.percentile(990);
    r.p999 = r.latency.percentile(999);
    r.arrivalDigest =
        fnv1a(arrivals.data(), arrivals.size() * sizeof(Cycle));
    r.traceDigest =
        fnv1a(completion.data(), completion.size() * sizeof(Cycle));
    r.valid = app.validate();
    r.resultDigest = app.resultDigest();
    r.stats = m.stats();
    if (!r.valid)
        warn("%s failed validation under serving arrivals",
             app.name().c_str());
    return r;
}

} // namespace ssim::harness
