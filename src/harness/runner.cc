#include "harness/runner.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "base/logging.h"
#include "harness/classifier.h"
#include "harness/report.h"
#include "harness/shard_runner.h"
#include "swarm/backends/trace_replay_backend.h"
#include "swarm/classification.h"
#include "swarm/policies.h"

namespace ssim::harness {

bool
prepareTraceReplay(apps::App& app, SimConfig& cfg)
{
    if (cfg.engineBackend != "trace-replay" || cfg.traceData)
        return false;
    if (!cfg.traceFile.empty()) {
        if (std::ifstream(cfg.traceFile).good()) {
            auto loaded = std::make_shared<TraceData>();
            if (!loaded->load(cfg.traceFile))
                fatal("backend trace-replay: malformed trace file '%s' "
                      "(delete it to re-record)",
                      cfg.traceFile.c_str());
            // Trace files carry no topology; a file the user points a
            // topologized run at is adopted under that run's key (the
            // in-memory reuse guard is for sweep/runOnce round trips).
            loaded->topologyKey = topologyKeyOf(cfg);
            cfg.traceData = std::move(loaded);
            return false;
        }
        // Missing file: fall through to record, then save there.
    }
    // Record pre-run: the timing model with a cost tap (trace-record),
    // same machine configuration otherwise — classification maps, host
    // threads, and policy knobs all apply to the recording run too.
    SimConfig recCfg = cfg;
    recCfg.engineBackend = "trace-record";
    auto sink = std::make_shared<TraceData>();
    recCfg.traceSink = sink;
    Machine rm(recCfg);
    app.enqueueInitial(rm);
    rm.run();
    sink->recordResultDigest = app.resultDigest();
    sink->topologyKey = topologyKeyOf(cfg);
    if (!cfg.traceFile.empty() && !sink->save(cfg.traceFile))
        warn("backend trace-replay: cannot save trace to '%s'",
             cfg.traceFile.c_str());
    if (const char* path = std::getenv("SWARMSIM_TRACE_SAVE"))
        if (!sink->save(path))
            warn("SWARMSIM_TRACE_SAVE: cannot write '%s'", path);
    cfg.traceData = std::move(sink);
    app.reset();
    return true;
}

RunResult
runOnce(apps::App& app, const SimConfig& cfg, AccessProfiler* profiler)
{
    app.reset();
    SimConfig hostCfg = cfg;
    // Env-only pass: host threads, engine backend, concurrent conflict
    // checks, parallel replay, and access classification
    // (harness/cli.h).
    applyHostThreads(hostCfg);
    applyBackend(hostCfg);
    applyConcConflicts(hostCfg);
    applyParallelReplay(hostCfg);
    applyClassify(hostCfg);
    applyTrace(hostCfg);
    // Scale-out knobs + topology resolution (docs/scale-out.md). The
    // topology prices cross-shard hops, so it must be armed before any
    // profiling or trace-record pre-run below — those measure the same
    // simulated machine the real run models.
    applyShards(hostCfg);
    applyTopology(hostCfg);
    applyShardHop(hostCfg);
    resolveTopology(hostCfg);
    if (hostCfg.traceData &&
        hostCfg.traceData->topologyKey != topologyKeyOf(hostCfg)) {
        // An armed trace recorded under a different topology prices
        // cross-shard hops wrong: drop it loudly and re-record below
        // rather than silently serve mismatched costs.
        warn("dropping armed trace (topology '%s' != this run's '%s'); "
             "re-recording",
             hostCfg.traceData->topologyKey.c_str(),
             topologyKeyOf(hostCfg).c_str());
        hostCfg.traceData = nullptr;
    }
    if (hostCfg.classifyMode == "profile" && !hostCfg.classifyMap) {
        // Profile-guided classification: run the workload once with
        // classification off, feeding every committed task's access
        // trace to an AccessClassifier, then hand the resulting map to
        // the measured run below. The pre-run is deliberately plain —
        // any caller-supplied profiler only observes the real run.
        SimConfig profCfg = hostCfg;
        profCfg.classifyMode = "off";
        AccessClassifier cls;
        Machine pm(profCfg);
        pm.setProfiler(&cls);
        app.enqueueInitial(pm);
        pm.run();
        auto map = std::make_shared<ClassificationMap>(
            cls.buildMap(app.reductionRanges()));
        if (const char* path = std::getenv("SWARMSIM_CLASSIFY_SAVE"))
            if (!map->save(path))
                warn("SWARMSIM_CLASSIFY_SAVE: cannot write '%s'", path);
        hostCfg.classifyMap = std::move(map);
        app.reset();
    }
    bool recordedHere = prepareTraceReplay(app, hostCfg);
    RunResult r;
    if (hostCfg.numShards > 1) {
        // Process fan-out: fork numShards replicas over shm rings
        // (harness/shard_runner.h). Pre-runs above happened in THIS
        // process, so the armed classification map / trace reach every
        // replica through fork's copy-on-write.
        if (profiler)
            fatal("sharded runs do not take a commit profiler (profile "
                  "single-process, then shard)");
        r = runSharded(app, hostCfg);
    } else {
        Machine m(hostCfg);
        if (profiler)
            m.setProfiler(profiler);
        app.enqueueInitial(m);
        m.run();
        r.cores = cfg.totalCores();
        r.sched = cfg.sched;
        r.valid = app.validate();
        r.stats = m.stats();
        r.resultDigest = app.resultDigest();
    }
    if (hostCfg.engineBackend == "trace-replay")
        r.trace = hostCfg.traceData;
    if (r.trace && r.trace->recordResultDigest &&
        r.trace->recordResultDigest != r.resultDigest) {
        // Replay must reproduce its recording run's results exactly —
        // costs never decide WHAT happens. A mismatch against a trace
        // recorded in this very call is a hard failure; against a trace
        // loaded from a file it usually means a stale/mismatched trace,
        // so warn loudly but let validate() stand.
        warn("trace-replay: %s result digest %016llx != recording run's "
             "%016llx%s",
             app.name().c_str(), (unsigned long long)r.resultDigest,
             (unsigned long long)r.trace->recordResultDigest,
             recordedHere ? "" : " (stale trace file?)");
        if (recordedHere)
            r.valid = false;
    }
    if (!r.valid)
        warn("%s failed validation under %s @ %u cores",
             app.name().c_str(), schedulerName(cfg.sched), r.cores);
    // SWARMSIM_OCC=1: dump per-lane / per-bank occupancy of the sharded
    // data plane after each run.
    static const bool occ = [] {
        const char* e = std::getenv("SWARMSIM_OCC");
        return e && e[0] == '1';
    }();
    if (occ)
        std::printf("[occ] %s @ %u cores\n%s\n", app.name().c_str(),
                    r.cores, occupancySummary(r.stats).c_str());
    return r;
}

namespace {

/// Sweep-wide trace reuse: under backend=trace-replay the first point's
/// runOnce records (or loads) the cost trace; every later point replays
/// that same trace instead of re-paying the timing model per core
/// count. Results are core-count invariant, so each replayed point's
/// digest is asserted against the recording run's — a divergence
/// invalidates that point loudly. No-op for non-trace backends (the
/// first run returns no trace). Reuse is keyed on topology too: if a
/// point resolves a different topology (e.g. SWARMSIM_TOPOLOGY mid
/// sweep), runOnce drops the armed trace and re-records, returning a
/// FRESH trace — check() adopts it so later points replay hop-correct
/// costs instead of being gated against the stale recording.
struct SweepTraceReuse
{
    std::shared_ptr<const TraceData> trace;

    void arm(SimConfig& cfg) const { cfg.traceData = trace; }

    void
    check(const apps::App& app, RunResult& r)
    {
        if (!trace || (r.trace && r.trace != trace)) {
            trace = r.trace;
            return;
        }
        if (trace->recordResultDigest &&
            r.resultDigest != trace->recordResultDigest) {
            warn("sweep: %s @ %u cores replayed digest %016llx != the "
                 "recorded timing run's %016llx",
                 app.name().c_str(), r.cores,
                 (unsigned long long)r.resultDigest,
                 (unsigned long long)trace->recordResultDigest);
            r.valid = false;
        }
    }
};

} // namespace

std::vector<RunResult>
sweep(apps::App& app, SchedulerType sched,
      const std::vector<uint32_t>& cores, uint64_t seed)
{
    std::vector<RunResult> out;
    SweepTraceReuse reuse;
    for (uint32_t c : cores) {
        SimConfig cfg = SimConfig::withCores(c, sched, seed);
        reuse.arm(cfg);
        out.push_back(runOnce(app, cfg));
        reuse.check(app, out.back());
    }
    return out;
}

std::vector<RunResult>
sweep(apps::App& app, const std::string& policy_spec,
      const std::vector<uint32_t>& cores, uint64_t seed)
{
    // Require an explicit scheduler: a spec like "steal-victim=random"
    // alone would otherwise silently measure the default scheduler.
    ssim_assert(policy_spec.rfind("sched=", 0) == 0 ||
                    policy_spec.find(",sched=") != std::string::npos,
                "policy spec must select a scheduler (sched=...)");
    std::vector<RunResult> out;
    SweepTraceReuse reuse;
    for (uint32_t c : cores) {
        SimConfig cfg = SimConfig::withCores(c, SchedulerType::Hints, seed);
        policies::apply(cfg, policy_spec);
        reuse.arm(cfg);
        out.push_back(runOnce(app, cfg));
        reuse.check(app, out.back());
    }
    return out;
}

std::vector<uint32_t>
coreSweep()
{
    const char* full = std::getenv("SWARMSIM_FULL");
    if (full && full[0] == '1')
        return {1, 4, 16, 64, 144, 256};
    return {1, 4, 16, 64};
}

uint32_t
maxCores()
{
    return coreSweep().back();
}

} // namespace ssim::harness
