#include "harness/runner.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "base/logging.h"
#include "harness/classifier.h"
#include "harness/report.h"
#include "swarm/classification.h"
#include "swarm/policies.h"

namespace ssim::harness {

RunResult
runOnce(apps::App& app, const SimConfig& cfg, AccessProfiler* profiler)
{
    app.reset();
    SimConfig hostCfg = cfg;
    // Env-only pass: host threads, engine backend, concurrent conflict
    // checks, parallel replay, and access classification
    // (harness/cli.h).
    applyHostThreads(hostCfg);
    applyBackend(hostCfg);
    applyConcConflicts(hostCfg);
    applyParallelReplay(hostCfg);
    applyClassify(hostCfg);
    if (hostCfg.classifyMode == "profile" && !hostCfg.classifyMap) {
        // Profile-guided classification: run the workload once with
        // classification off, feeding every committed task's access
        // trace to an AccessClassifier, then hand the resulting map to
        // the measured run below. The pre-run is deliberately plain —
        // any caller-supplied profiler only observes the real run.
        SimConfig profCfg = hostCfg;
        profCfg.classifyMode = "off";
        AccessClassifier cls;
        Machine pm(profCfg);
        pm.setProfiler(&cls);
        app.enqueueInitial(pm);
        pm.run();
        auto map = std::make_shared<ClassificationMap>(
            cls.buildMap(app.reductionRanges()));
        if (const char* path = std::getenv("SWARMSIM_CLASSIFY_SAVE"))
            if (!map->save(path))
                warn("SWARMSIM_CLASSIFY_SAVE: cannot write '%s'", path);
        hostCfg.classifyMap = std::move(map);
        app.reset();
    }
    Machine m(hostCfg);
    if (profiler)
        m.setProfiler(profiler);
    app.enqueueInitial(m);
    m.run();
    RunResult r;
    r.cores = cfg.totalCores();
    r.sched = cfg.sched;
    r.valid = app.validate();
    r.stats = m.stats();
    if (!r.valid)
        warn("%s failed validation under %s @ %u cores",
             app.name().c_str(), schedulerName(cfg.sched), r.cores);
    // SWARMSIM_OCC=1: dump per-lane / per-bank occupancy of the sharded
    // data plane after each run.
    static const bool occ = [] {
        const char* e = std::getenv("SWARMSIM_OCC");
        return e && e[0] == '1';
    }();
    if (occ)
        std::printf("[occ] %s @ %u cores\n%s\n", app.name().c_str(),
                    r.cores, occupancySummary(r.stats).c_str());
    return r;
}

std::vector<RunResult>
sweep(apps::App& app, SchedulerType sched,
      const std::vector<uint32_t>& cores, uint64_t seed)
{
    std::vector<RunResult> out;
    for (uint32_t c : cores) {
        SimConfig cfg = SimConfig::withCores(c, sched, seed);
        out.push_back(runOnce(app, cfg));
    }
    return out;
}

std::vector<RunResult>
sweep(apps::App& app, const std::string& policy_spec,
      const std::vector<uint32_t>& cores, uint64_t seed)
{
    // Require an explicit scheduler: a spec like "steal-victim=random"
    // alone would otherwise silently measure the default scheduler.
    ssim_assert(policy_spec.rfind("sched=", 0) == 0 ||
                    policy_spec.find(",sched=") != std::string::npos,
                "policy spec must select a scheduler (sched=...)");
    std::vector<RunResult> out;
    for (uint32_t c : cores) {
        SimConfig cfg = SimConfig::withCores(c, SchedulerType::Hints, seed);
        policies::apply(cfg, policy_spec);
        out.push_back(runOnce(app, cfg));
    }
    return out;
}

std::vector<uint32_t>
coreSweep()
{
    const char* full = std::getenv("SWARMSIM_FULL");
    if (full && full[0] == '1')
        return {1, 4, 16, 64, 144, 256};
    return {1, 4, 16, 64};
}

uint32_t
maxCores()
{
    return coreSweep().back();
}

} // namespace ssim::harness
