#include "harness/runner.h"

#include <cstdlib>

#include "base/logging.h"

namespace ssim::harness {

RunResult
runOnce(apps::App& app, const SimConfig& cfg)
{
    app.reset();
    Machine m(cfg);
    app.enqueueInitial(m);
    m.run();
    RunResult r;
    r.cores = cfg.totalCores();
    r.sched = cfg.sched;
    r.valid = app.validate();
    r.stats = m.stats();
    if (!r.valid)
        warn("%s failed validation under %s @ %u cores",
             app.name().c_str(), schedulerName(cfg.sched), r.cores);
    return r;
}

std::vector<RunResult>
sweep(apps::App& app, SchedulerType sched,
      const std::vector<uint32_t>& cores, uint64_t seed)
{
    std::vector<RunResult> out;
    for (uint32_t c : cores) {
        SimConfig cfg = SimConfig::withCores(c, sched, seed);
        out.push_back(runOnce(app, cfg));
    }
    return out;
}

std::vector<uint32_t>
coreSweep()
{
    const char* full = std::getenv("SWARMSIM_FULL");
    if (full && full[0] == '1')
        return {1, 4, 16, 64, 144, 256};
    return {1, 4, 16, 64};
}

uint32_t
maxCores()
{
    return coreSweep().back();
}

} // namespace ssim::harness
