#include "harness/classifier.h"

#include "base/hash.h"

namespace ssim::harness {

void
AccessClassifier::onCommit(const Task& t)
{
    // Register and memory arguments count as argument accesses (the
    // paper's Fig. 3 analysis considers both equally).
    argAccesses_ += t.nargs;

    // NOHINT tasks have no hint; give each a unique pseudo-hint so their
    // data is single-hint only if nothing else touches it.
    uint64_t hint = t.hasHint() ? t.hint : (mix64(t.uid) | (1ull << 63));
    for (uint64_t enc : t.trace) {
        // Trace entries are (wordAddr << 2) | op; op 0=read 1=write
        // 2=reduce (swarm/task.h). Words map to their covering line.
        Addr word = enc >> 2;
        Loc& loc = locs_[lineOf(word << 3)];
        switch (enc & 3) {
          case 0: loc.reads++; break;
          case 1: loc.writes++; break;
          default: loc.reduces++; break;
        }
        loc.byHint[hint]++;
    }
}

AccessClassifier::Result
AccessClassifier::classify() const
{
    Result r;
    uint64_t cat[4] = {}; // [single][ro]
    for (const auto& [line, loc] : locs_) {
        // For the Fig. 3/6 axes a reduce is a (commutative) write.
        uint64_t wr = loc.writes + loc.reduces;
        uint64_t total = loc.reads + wr;
        bool ro = wr == 0 || loc.reads >= roRatio_ * wr;
        uint64_t maxHint = 0;
        for (const auto& [h, n] : loc.byHint)
            maxHint = std::max(maxHint, n);
        bool single = double(maxHint) > singleFrac_ * double(total);
        cat[(single ? 2u : 0u) + (ro ? 1u : 0u)] += total;
    }
    uint64_t all = argAccesses_ + cat[0] + cat[1] + cat[2] + cat[3];
    r.totalAccesses = all;
    if (all == 0)
        return r;
    r.arguments = double(argAccesses_) / double(all);
    r.multiHintRW = double(cat[0]) / double(all);
    r.multiHintRO = double(cat[1]) / double(all);
    r.singleHintRW = double(cat[2]) / double(all);
    r.singleHintRO = double(cat[3]) / double(all);
    return r;
}

ClassificationMap
AccessClassifier::buildMap(const std::vector<ReductionRange>& ranges) const
{
    auto lineInRanges = [&](LineAddr line) {
        Addr lo = line << lineBits;
        Addr hi = lo + lineBytes;
        for (const auto& r : ranges)
            if (lo >= r.base && hi <= r.base + r.bytes)
                return true;
        return false;
    };

    ClassificationMap map;
    for (const auto& [line, loc] : locs_) {
        if (loc.writes == 0 && loc.reduces == 0) {
            if (loc.reads > 0)
                map.lines[line] = LineClass::ReadOnly;
            continue;
        }
        if (loc.writes == 0 && loc.reduces > 0 && lineInRanges(line)) {
            map.lines[line] = LineClass::Reduction;
            continue;
        }
        uint64_t total = loc.reads + loc.writes + loc.reduces;
        uint64_t maxHint = 0;
        for (const auto& [h, n] : loc.byHint)
            maxHint = std::max(maxHint, n);
        if (double(maxHint) > singleFrac_ * double(total))
            map.lines[line] = LineClass::Private;
    }
    return map;
}

} // namespace ssim::harness
