#include "harness/classifier.h"

#include "base/hash.h"

namespace ssim::harness {

void
AccessClassifier::onCommit(const Task& t)
{
    // Register and memory arguments count as argument accesses (the
    // paper's Fig. 3 analysis considers both equally).
    argAccesses_ += t.nargs;

    // NOHINT tasks have no hint; give each a unique pseudo-hint so their
    // data is single-hint only if nothing else touches it.
    uint64_t hint = t.hasHint() ? t.hint : (mix64(t.uid) | (1ull << 63));
    for (uint64_t enc : t.trace) {
        Loc& loc = locs_[enc >> 1];
        if (enc & 1)
            loc.writes++;
        else
            loc.reads++;
        loc.byHint[hint]++;
    }
}

AccessClassifier::Result
AccessClassifier::classify() const
{
    Result r;
    uint64_t cat[4] = {}; // [single][ro]
    for (const auto& [addr, loc] : locs_) {
        uint64_t total = loc.reads + loc.writes;
        bool ro = loc.writes == 0 || loc.reads >= roRatio_ * loc.writes;
        uint64_t maxHint = 0;
        for (const auto& [h, n] : loc.byHint)
            maxHint = std::max(maxHint, n);
        bool single = double(maxHint) > singleFrac_ * double(total);
        cat[(single ? 2u : 0u) + (ro ? 1u : 0u)] += total;
    }
    uint64_t all = argAccesses_ + cat[0] + cat[1] + cat[2] + cat[3];
    r.totalAccesses = all;
    if (all == 0)
        return r;
    r.arguments = double(argAccesses_) / double(all);
    r.multiHintRW = double(cat[0]) / double(all);
    r.multiHintRO = double(cat[1]) / double(all);
    r.singleHintRW = double(cat[2]) / double(all);
    r.singleHintRO = double(cat[3]) / double(all);
    return r;
}

} // namespace ssim::harness
