/**
 * @file
 * Architecture-independent memory-access classifier (paper Sec. IV-B,
 * Figs. 3 and 6).
 *
 * Profiles all memory accesses made by committing tasks and classifies
 * each word-granularity location on two axes:
 *   read-only:   >= `ro_ratio` reads per write over its profiled life
 *                (data never written by tasks, e.g. initialized once, is
 *                read-only);
 *   single-hint: > `single_frac` of its accesses come from tasks of a
 *                single hint.
 * Accesses to task arguments are a separate category.
 */
#pragma once

#include <unordered_map>

#include "swarm/commit_controller.h"

namespace ssim::harness {

class AccessClassifier : public AccessProfiler
{
  public:
    explicit AccessClassifier(uint64_t ro_ratio = 100,
                              double single_frac = 0.9)
        : roRatio_(ro_ratio), singleFrac_(single_frac)
    {
    }

    void onCommit(const Task& t) override;

    struct Result
    {
        // Fractions of all accesses; sums to 1.
        double arguments = 0;
        double multiHintRO = 0;
        double singleHintRO = 0;
        double multiHintRW = 0;
        double singleHintRW = 0;
        uint64_t totalAccesses = 0;
    };
    Result classify() const;

  private:
    struct Loc
    {
        uint64_t reads = 0;
        uint64_t writes = 0;
        std::unordered_map<uint64_t, uint64_t> byHint;
    };

    uint64_t roRatio_;
    double singleFrac_;
    uint64_t argAccesses_ = 0;
    std::unordered_map<uint64_t, Loc> locs_; // by word address
};

} // namespace ssim::harness
