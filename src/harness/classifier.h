/**
 * @file
 * Architecture-independent memory-access classifier (paper Sec. IV-B,
 * Figs. 3 and 6).
 *
 * Profiles all memory accesses made by committing tasks at *line*
 * granularity — the same keys the LineTable banks use, so the
 * classification map and the conflict pipeline agree — and classifies
 * each line on two axes:
 *   read-only:   >= `ro_ratio` reads per write over its profiled life
 *                (data never written by tasks, e.g. initialized once, is
 *                read-only);
 *   single-hint: > `single_frac` of its accesses come from tasks of a
 *                single hint.
 * Accesses to task arguments are a separate category.
 *
 * Beyond the passive Fig. 3/6 reporting (classify()), buildMap() turns
 * the profile into an active ClassificationMap consumed by the
 * ConflictManager (classifyMode=profile): strictly-never-written lines
 * become ReadOnly, reduce-only lines inside app-declared ranges become
 * Reduction, and written single-hint lines become Private. Every class
 * is correctness-neutral — a contradicting access at runtime demotes
 * the line to full tracking (swarm/classification.h).
 */
#pragma once

#include <unordered_map>
#include <vector>

#include "swarm/classification.h"
#include "swarm/commit_controller.h"

namespace ssim::harness {

class AccessClassifier : public AccessProfiler
{
  public:
    explicit AccessClassifier(uint64_t ro_ratio = 100,
                              double single_frac = 0.9)
        : roRatio_(ro_ratio), singleFrac_(single_frac)
    {
    }

    void onCommit(const Task& t) override;

    struct Result
    {
        // Fractions of all accesses; sums to 1.
        double arguments = 0;
        double multiHintRO = 0;
        double singleHintRO = 0;
        double multiHintRW = 0;
        double singleHintRW = 0;
        uint64_t totalAccesses = 0;
    };
    Result classify() const;

    /**
     * Build the active classification map from the profile:
     *  - ReadOnly:  never written (no plain writes, no reduces);
     *  - Reduction: mutated only by ctx.reduce() and entirely inside
     *    one of @p ranges (the app's declared combiner state);
     *  - Private:   written, and > single_frac of accesses from one
     *    hint (the paper's single-hint-RW quadrant; same-hint tasks
     *    serialize at dispatch, so one-owner-at-a-time mostly holds
     *    and the demotion path absorbs the exceptions).
     */
    ClassificationMap buildMap(
        const std::vector<ReductionRange>& ranges = {}) const;

  private:
    struct Loc
    {
        uint64_t reads = 0;
        uint64_t writes = 0;  // plain writes only
        uint64_t reduces = 0; // ctx.reduce() ops
        std::unordered_map<uint64_t, uint64_t> byHint;
    };

    uint64_t roRatio_;
    double singleFrac_;
    uint64_t argAccesses_ = 0;
    std::unordered_map<LineAddr, Loc> locs_; // by line address
};

} // namespace ssim::harness
