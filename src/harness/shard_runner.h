/**
 * @file
 * Sharded-run driver: fork N replica processes connected by shm rings
 * and reduce their results (docs/scale-out.md).
 *
 * The process fan-out lives entirely in the harness: a Machine never
 * forks. runShardedRaw builds the transport fabric (swarm/shard.h) in
 * the parent, forks cfg.numShards children AFTER app setup — so
 * copy-on-write hands every replica a bit-identical heap at identical
 * addresses — and becomes the GVT reducer: it aligns the replicas'
 * periodic progress reports by epoch index and fails fast on any
 * divergence. At end of run each child publishes a versioned
 * ShardSnapshot (swarm/wire.h); the parent strictly parses all of
 * them, hard-gates cross-replica digest equality, and returns shard
 * 0's view.
 */
#pragma once

#include <functional>
#include <string>

#include "apps/app.h"
#include "base/stats.h"
#include "sim/config.h"

namespace ssim {
class Machine;
}

namespace ssim::harness {

struct RunResult;

/**
 * Resolve cfg.topology from cfg.topologyFile / cfg.numShards:
 *  - an injected cfg.topology is validated against ntiles/numShards;
 *  - else a non-empty topologyFile is strictly parsed (fatal when
 *    malformed or mismatched — a bad spec must never silently
 *    degrade to an untopologized run);
 *  - else numShards > 1 arms TopologySpec::uniform(ntiles, numShards);
 *  - else the config stays untopologized.
 */
void resolveTopology(SimConfig& cfg);

/**
 * Trace-reuse key of the armed topology: "single" for an
 * untopologized config, else the topology's key() plus the shard-hop
 * penalty. numShards is deliberately absent: process fan-out never
 * changes simulated timing, so traces stay valid across it.
 */
std::string topologyKeyOf(const SimConfig& cfg);

/** What the parent reducer learned from one sharded run. */
struct ShardedRunOutcome
{
    bool valid = false;        ///< every replica validated its app state
    uint64_t statsDigest = 0;  ///< statsDigest(), equal across replicas
    uint64_t resultDigest = 0; ///< App::resultDigest, equal across replicas
    SimStats stats;            ///< shard 0's stats
    uint64_t progressEpochsChecked = 0; ///< reducer agreement checks
};

/**
 * Fork cfg.numShards replicas, run @p setup + Machine::run in each,
 * and reduce. The callbacks run in the CHILD processes: @p setup
 * enqueues the workload's initial tasks, @p result_digest and
 * @p validate inspect the app state after the child's run. Fatal on
 * replica divergence (progress disagreement, digest mismatch, child
 * crash, malformed snapshot); requires cfg.topology with
 * cfg.numShards == topology->numShards() >= 2.
 */
ShardedRunOutcome
runShardedRaw(const SimConfig& cfg,
              const std::function<void(Machine&)>& setup,
              const std::function<uint64_t()>& result_digest,
              const std::function<bool()>& validate);

/**
 * runOnce's sharded twin: reset @p app, run it on cfg.numShards
 * replicas, return a RunResult carrying shard 0's stats and the
 * cross-replica-verified digests. Unlike runOnce this applies no env
 * overrides — runOnce itself routes here after its env pass.
 */
RunResult runSharded(apps::App& app, const SimConfig& cfg);

} // namespace ssim::harness
