/**
 * @file
 * Text/CSV reporting for the bench harness: fixed-width tables, speedup
 * series, and the paper's two standard breakdowns (core cycles and NoC
 * flits), each normalized the way the corresponding figure normalizes.
 */
#pragma once

#include <string>
#include <vector>

#include "base/stats.h"
#include "harness/runner.h"

namespace ssim::harness {

/** Simple fixed-width text table with an optional CSV mirror. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    /** Print to stdout with aligned columns. */
    void print() const;
    /** Write results/<name>.csv when SWARMSIM_CSV=1. */
    void writeCsv(const std::string& name) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int prec = 2);
std::string fmtInt(uint64_t v);

/** "1.00x / 3.42x / ..." speedups relative to the base run's cycles. */
std::vector<double> speedups(const std::vector<RunResult>& series,
                             uint64_t base_cycles);

/** Cycle-breakdown row normalized to a reference total (Fig. 5a style). */
std::vector<std::string> cycleBreakdownRow(const SimStats& s,
                                           double norm_total);

/** Traffic-breakdown row normalized to a reference total (Fig. 5b). */
std::vector<std::string> trafficBreakdownRow(const SimStats& s,
                                             double norm_total);

/**
 * Two-line occupancy summary of the sharded data plane: events per tile
 * event lane (min/mean/max plus the global control lane) and peak lines
 * per line-table bank. Empty string if the run predates lane stats.
 */
std::string occupancySummary(const SimStats& s);

/** Section banner for bench output. */
void banner(const std::string& title, const std::string& subtitle = "");

} // namespace ssim::harness
