/**
 * @file
 * Text/CSV reporting for the bench harness: fixed-width tables, speedup
 * series, and the paper's two standard breakdowns (core cycles and NoC
 * flits), each normalized the way the corresponding figure normalizes.
 */
#pragma once

#include <string>
#include <vector>

#include "base/stats.h"
#include "harness/runner.h"

namespace ssim::harness {

/** Simple fixed-width text table with an optional CSV mirror. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    /** Print to stdout with aligned columns. */
    void print() const;
    /** Write results/<name>.csv when SWARMSIM_CSV=1. */
    void writeCsv(const std::string& name) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int prec = 2);
std::string fmtInt(uint64_t v);

/** "1.00x / 3.42x / ..." speedups relative to the base run's cycles. */
std::vector<double> speedups(const std::vector<RunResult>& series,
                             uint64_t base_cycles);

/** Cycle-breakdown row normalized to a reference total (Fig. 5a style). */
std::vector<std::string> cycleBreakdownRow(const SimStats& s,
                                           double norm_total);

/** Traffic-breakdown row normalized to a reference total (Fig. 5b). */
std::vector<std::string> trafficBreakdownRow(const SimStats& s,
                                             double norm_total);

/**
 * Two-line occupancy summary of the sharded data plane: events per tile
 * event lane (min/mean/max plus the global control lane) and peak lines
 * per line-table bank. Empty string if the run predates lane stats.
 */
std::string occupancySummary(const SimStats& s);

/** Section banner for bench output. */
void banner(const std::string& title, const std::string& subtitle = "");

/**
 * Machine-readable bench results (the CI perf trajectory): every
 * microbenchmark accepts `--json=FILE` and emits one document of this
 * shape (schema documented in docs/benchmarks.md):
 *
 *   {
 *     "bench": "<name>", "schema": 1,
 *     "meta": { "<key>": <string|number|bool>, ... },
 *     "rows": [ { "<key>": <value>, ... }, ... ]
 *   }
 *
 * `meta` holds run-level facts (smoke mode, input sizes, pass/fail);
 * each row is one measured configuration. Keys keep insertion order, so
 * diffs across CI runs stay line-stable.
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string bench);

    // Run-level metadata.
    void meta(const std::string& key, const std::string& v);
    void meta(const std::string& key, const char* v);
    void meta(const std::string& key, double v);
    void meta(const std::string& key, uint64_t v);
    void meta(const std::string& key, bool v);

    /** Start a new result row; subsequent val() calls land in it. */
    void beginRow();
    void val(const std::string& key, const std::string& v);
    void val(const std::string& key, const char* v);
    void val(const std::string& key, double v);
    void val(const std::string& key, uint64_t v);
    void val(const std::string& key, bool v);

    /** Serialize to @p path; warns and returns false on I/O failure. */
    bool write(const std::string& path) const;

    /**
     * The benches' shared epilogue: record @p pass as the `pass` meta
     * field and, if `--json=FILE` is in argv, write the document there.
     * Returns false only when a requested write failed — callers fold
     * that into their exit gate.
     */
    bool finish(int argc, char** argv, bool pass);

  private:
    using Fields = std::vector<std::pair<std::string, std::string>>;
    static void add(Fields& f, const std::string& key, std::string json);

    std::string bench_;
    Fields meta_;
    std::vector<Fields> rows_;
};

} // namespace ssim::harness
