/**
 * @file
 * Open-system serving harness (docs/serving.md): an open-loop request
 * stream driven into a long-running Machine.
 *
 * Closed-loop benches enqueue the whole workload up front and measure
 * makespan; a serving system instead sees requests ARRIVE over time,
 * and the interesting numbers are tail latency and sustainable
 * throughput under a given offered load. serveOnce() pre-schedules one
 * global-lane event per request at its seeded arrival cycle; each event
 * injects the request's root task mid-run (Machine::injectRoot), so the
 * machine runs open-loop — arrivals never wait for earlier requests
 * (no coordinated omission).
 *
 * Determinism contract: arrival cycles come from a seeded generator
 * built on integer fixed-point math (base/fixmath.h — no libm), and
 * injection events run on the coordinator in exact (cycle, seq) order,
 * so the request trace, the latency histogram, and the app's result
 * digest are bit-identical at any cfg.hostThreads. The app result
 * digest is additionally backend-independent (timestamp order fixes the
 * semantics); latencies are measured in simulated cycles, so the
 * histogram is a per-backend golden.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/app.h"
#include "base/stats.h"
#include "sim/config.h"

namespace ssim::harness {

/** Arrival-process shapes for the open-loop driver. */
enum class ArrivalKind : uint8_t { Poisson, Uniform, Bursty };

const char* arrivalKindName(ArrivalKind k);

/** Parse "poisson" | "uniform" | "bursty"; fatals on anything else. */
ArrivalKind parseArrivalKind(const std::string& name);

/**
 * Seeded arrival cycles for @p requests requests with mean inter-arrival
 * gap @p mean_gap (cycles):
 *  - Poisson: exponential gaps, -ln(U) * mean (fixed-point, min 1);
 *  - Uniform: a fixed gap of exactly mean_gap;
 *  - Bursty:  alternating 16-request phases of hot (mean/4) and cold
 *             (7*mean/4) exponential gaps — same overall mean, heavier
 *             queueing transients.
 * Strictly increasing (every gap >= 1 cycle), first arrival > 0.
 */
std::vector<Cycle> generateArrivals(ArrivalKind kind, uint64_t requests,
                                    uint64_t mean_gap, uint64_t seed);

/**
 * A fixed-bucket log-scale latency histogram with deterministic
 * percentiles. Values below 64 get exact buckets; above, each
 * power-of-two octave splits into 64 log-spaced sub-buckets, so any
 * recorded value maps to a bucket whose upper bound is within ~1.6% of
 * it. Percentiles return the bucket's (deterministic) upper-bound
 * representative — bit-reproducible across host thread counts, unlike
 * anything interpolated from floating-point state. The digest hashes
 * the raw bucket counts and is the serving tests' thread-invariance
 * gate.
 */
class LatencyRecorder
{
  public:
    static constexpr uint32_t kLinearMax = 64; ///< exact below this
    static constexpr uint32_t kSubBits = 6;    ///< sub-buckets/octave
    static constexpr uint32_t kSub = 1u << kSubBits;
    static constexpr uint32_t kNumBuckets = kLinearMax + (64 - 6) * kSub;

    void record(uint64_t v);

    uint64_t count() const { return count_; }
    uint64_t maxValue() const { return max_; }

    /**
     * Nearest-rank percentile at @p permille (500 = p50, 990 = p99,
     * 999 = p999), as the holding bucket's upper-bound representative.
     * 0 if nothing was recorded.
     */
    uint64_t percentile(uint32_t permille) const;

    /** FNV-1a over the occupied (bucket, count) pairs. */
    uint64_t digest() const;

  private:
    static uint32_t bucketOf(uint64_t v);
    static uint64_t bucketUpper(uint32_t b);

    std::array<uint64_t, kNumBuckets> counts_{};
    uint64_t count_ = 0;
    uint64_t max_ = 0;
};

/** Serving-run knobs (the SimConfig stays the machine's own shape). */
struct ServingConfig
{
    ArrivalKind arrivals = ArrivalKind::Poisson;
    /// Mean inter-arrival gap in simulated cycles — the offered-load
    /// knob. micro_serve's --target-qps=N sets it to 1e6 / N (N =
    /// requests per million cycles).
    uint64_t meanGapCycles = 500;
    /// Per-request completion deadline, cycles after arrival (0 = none).
    uint64_t deadlineCycles = 0;
    /// Seed for the arrival-stream generator (independent of the app's
    /// workload seed).
    uint64_t seed = 1;
};

struct ServingResult
{
    uint64_t requests = 0;
    uint64_t deadlineMisses = 0;
    Cycle cycles = 0;       ///< makespan (last commit cycle)
    Cycle lastArrival = 0;  ///< cycle of the final request's arrival
    uint64_t p50 = 0, p99 = 0, p999 = 0;
    LatencyRecorder latency;
    uint64_t arrivalDigest = 0; ///< over the arrival-cycle trace
    uint64_t traceDigest = 0;   ///< over per-request completion cycles
    uint64_t resultDigest = 0;  ///< the app's result digest
    bool valid = false;
    SimStats stats;

    /** Achieved throughput, requests per million cycles. */
    double qpmc() const
    {
        return cycles ? 1e6 * double(requests) / double(cycles) : 0;
    }
};

/**
 * Run @p app as a serving tenant: reset it, generate the seeded arrival
 * stream, schedule one injection event per request, run the machine,
 * and account per-request latency (completion = the last commit cycle
 * of any task in the request's timestamp range) against the arrival.
 * Applies the same SWARMSIM_* env overrides as runOnce, including the
 * profile-guided classification pre-run (which profiles a closed-loop
 * run of the same workload).
 */
ServingResult serveOnce(apps::App& app, const SimConfig& cfg,
                        const ServingConfig& scfg);

} // namespace ssim::harness
