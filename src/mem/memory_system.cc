#include "mem/memory_system.h"

#include <bit>

#include "base/hash.h"
#include "base/logging.h"

namespace ssim {

MemorySystem::MemorySystem(const SimConfig& cfg, Mesh& mesh, SimStats& stats)
    : cfg_(cfg), mesh_(mesh), stats_(stats),
      coresPerTile_(cfg.coresPerTile), ntiles_(cfg.ntiles)
{
    ssim_assert(ntiles_ <= 64, "sharer mask is 64 bits wide");
    for (uint32_t c = 0; c < cfg.totalCores(); c++)
        l1s_.emplace_back(uint64_t(cfg.l1SizeKB) * 1024, cfg.l1Ways);
    for (uint32_t t = 0; t < ntiles_; t++) {
        l2s_.emplace_back(uint64_t(cfg.l2SizeKB) * 1024, cfg.l2Ways);
        l3_.emplace_back(uint64_t(cfg.l3SliceKB) * 1024, cfg.l3Ways);
    }
}

TileId
MemorySystem::homeOf(LineAddr line) const
{
    return TileId(mix64(line) % ntiles_);
}

uint64_t
MemorySystem::sharerMask(LineAddr line) const
{
    auto it = dir_.find(line);
    return it == dir_.end() ? 0 : it->second.sharers;
}

bool
MemorySystem::inL1(CoreId core, LineAddr line) const
{
    return l1s_[core].probe(line) != nullptr;
}

bool
MemorySystem::inL2(TileId tile, LineAddr line) const
{
    return l2s_[tile].probe(line) != nullptr;
}

bool
MemorySystem::inL3(LineAddr line) const
{
    return l3_[homeOf(line)].probe(line) != nullptr;
}

void
MemorySystem::backInvalidateL1s(TileId tile, LineAddr line)
{
    uint32_t base = tile * coresPerTile_;
    uint32_t end = std::min<uint32_t>(base + coresPerTile_,
                                      uint32_t(l1s_.size()));
    for (uint32_t c = base; c < end; c++)
        l1s_[c].invalidate(line);
}

void
MemorySystem::handleL2Victim(TileId tile, LineAddr line, uint8_t state,
                             TrafficClass cls)
{
    backInvalidateL1s(tile, line);
    TileId h = homeOf(line);
    auto it = dir_.find(line);
    // The line must be in the (inclusive) L3 and tracked by the directory;
    // tolerate a missing entry defensively (it only costs traffic).
    if (state == kModified) {
        // Write back the dirty data into the L3.
        mesh_.inject(tile, h, cfg_.dataFlits, cls);
        if (it != dir_.end()) {
            it->second.owner = -1;
            it->second.sharers &= ~(1ull << tile);
            it->second.dirty = true;
        }
    } else {
        // Clean eviction: 1-flit notification keeps the directory exact.
        mesh_.inject(tile, h, cfg_.ctrlFlits, cls);
        if (it != dir_.end())
            it->second.sharers &= ~(1ull << tile);
    }
}

void
MemorySystem::handleL3Victim(LineAddr line, uint8_t, TrafficClass cls)
{
    TileId h = homeOf(line);
    auto it = dir_.find(line);
    if (it != dir_.end()) {
        DirEntry& e = it->second;
        uint64_t mask = e.sharers;
        bool dirty = e.dirty;
        while (mask) {
            uint32_t t = std::countr_zero(mask);
            mask &= mask - 1;
            // Back-invalidation message; a Modified owner writes back.
            mesh_.inject(h, t, cfg_.ctrlFlits, cls);
            if (auto st = l2s_[t].invalidate(line)) {
                if (*st == kModified) {
                    mesh_.inject(t, h, cfg_.dataFlits, cls);
                    dirty = true;
                }
            }
            backInvalidateL1s(t, line);
        }
        if (dirty) // write back to the memory controller
            mesh_.injectRaw(cfg_.dataFlits, cls);
        dir_.erase(it);
    }
}

uint32_t
MemorySystem::directoryVisit(TileId tile, LineAddr line, bool is_write,
                             bool need_data, TrafficClass cls)
{
    TileId h = homeOf(line);
    uint32_t lat = mesh_.latency(tile, h) + cfg_.l3Latency;
    mesh_.inject(tile, h, cfg_.ctrlFlits, cls); // request

    bool l3hit = l3_[h].lookup(line) != nullptr;
    if (l3hit)
        stats_.l3Hits++;
    else
        stats_.l3Misses++;

    if (!l3hit) {
        // Fetch from main memory through an edge controller.
        lat += 2 * mesh_.memCtrlLatency(h, line) + cfg_.memLatency;
        mesh_.injectRaw(cfg_.ctrlFlits + cfg_.dataFlits, cls);
        if (auto victim = l3_[h].insert(line))
            handleL3Victim(victim->line, victim->state, cls);
        dir_[line] = DirEntry{};
    }

    DirEntry& e = dir_[line];

    if (is_write) {
        // Invalidate all other sharers; fetch from a Modified owner.
        uint32_t remoteLat = 0;
        uint64_t mask = e.sharers & ~(1ull << tile);
        bool fetchedFromOwner = false;
        while (mask) {
            uint32_t s = std::countr_zero(mask);
            mask &= mask - 1;
            mesh_.inject(h, s, cfg_.ctrlFlits, cls); // invalidation
            bool isOwner = (e.owner == int16_t(s));
            if (isOwner && need_data) {
                // Owner forwards the dirty line directly to the requester.
                mesh_.inject(s, tile, cfg_.dataFlits, cls);
                fetchedFromOwner = true;
            } else {
                mesh_.inject(s, tile, cfg_.ctrlFlits, cls); // ack
            }
            remoteLat = std::max(remoteLat, mesh_.latency(h, s) +
                                     (isOwner ? cfg_.l2Latency : 0) +
                                     mesh_.latency(s, tile));
            l2s_[s].invalidate(line);
            backInvalidateL1s(s, line);
        }
        lat += remoteLat;
        if (need_data && !fetchedFromOwner) {
            mesh_.inject(h, tile, cfg_.dataFlits, cls);
            lat = std::max(lat, mesh_.latency(tile, h) + cfg_.l3Latency +
                                    mesh_.latency(h, tile));
        }
        e.sharers = 1ull << tile;
        e.owner = int16_t(tile);
        e.dirty = true;
    } else {
        ssim_assert(need_data);
        if (e.owner >= 0 && e.owner != int16_t(tile)) {
            // Downgrade the Modified owner; it forwards data to the
            // requester and writes back to the L3 bank.
            TileId o = TileId(e.owner);
            mesh_.inject(h, o, cfg_.ctrlFlits, cls);
            mesh_.inject(o, tile, cfg_.dataFlits, cls);
            mesh_.inject(o, h, cfg_.dataFlits, cls);
            lat += mesh_.latency(h, o) + cfg_.l2Latency +
                   mesh_.latency(o, tile);
            if (auto st = l2s_[o].lookup(line))
                *st = kShared;
            e.owner = -1;
            e.dirty = true;
        } else {
            mesh_.inject(h, tile, cfg_.dataFlits, cls);
            lat += mesh_.latency(h, tile);
        }
        e.sharers |= 1ull << tile;
        if (e.owner == int16_t(tile))
            e.owner = -1; // read downgrade of our own M line cannot happen
    }
    return lat;
}

MemorySystem::AccessResult
MemorySystem::access(CoreId core, Addr addr, bool is_write, TrafficClass cls)
{
    LineAddr line = lineOf(addr);
    TileId tile = tileOf(core);
    uint32_t lat = cfg_.l1Latency;

    bool l1hit = l1s_[core].lookup(line) != nullptr;
    uint8_t* l2state = l2s_[tile].lookup(line);

    if (l1hit) {
        ssim_assert(l2state, "L2 must include L1 contents");
        if (!is_write || *l2state == kModified) {
            stats_.l1Hits++;
            return {lat, false};
        }
        // Write to a Shared line: upgrade through the directory.
        stats_.l1Hits++;
        lat += cfg_.l2Latency;
        lat += directoryVisit(tile, line, true, /*need_data=*/false, cls);
        *l2state = kModified;
        return {lat, true};
    }

    stats_.l1Misses++;
    lat += cfg_.l2Latency;

    if (l2state) {
        stats_.l2Hits++;
        if (!is_write || *l2state == kModified) {
            if (auto v = l1s_[core].insert(line))
                (void)v; // L1 evictions are silent (clean)
            return {lat, false};
        }
        lat += directoryVisit(tile, line, true, /*need_data=*/false, cls);
        *l2state = kModified;
        if (auto v = l1s_[core].insert(line))
            (void)v;
        return {lat, true};
    }

    stats_.l2Misses++;
    lat += directoryVisit(tile, line, is_write, /*need_data=*/true, cls);

    if (auto victim = l2s_[tile].insert(line,
                                        is_write ? kModified : kShared))
        handleL2Victim(tile, victim->line, victim->state, cls);
    if (auto v = l1s_[core].insert(line))
        (void)v;
    return {lat, true};
}

} // namespace ssim
