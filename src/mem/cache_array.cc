#include "mem/cache_array.h"

#include <bit>

#include "base/logging.h"

namespace ssim {

CacheArray::CacheArray(uint64_t size_bytes, uint32_t ways) : ways_(ways)
{
    ssim_assert(ways >= 1);
    uint64_t lines = size_bytes / lineBytes;
    ssim_assert(lines >= ways, "cache smaller than one set");
    sets_ = uint32_t(lines / ways);
    ssim_assert(std::has_single_bit(sets_), "sets must be a power of two");
    arr_.resize(uint64_t(sets_) * ways_);
}

uint8_t*
CacheArray::lookup(LineAddr line)
{
    Way* set = &arr_[uint64_t(setOf(line)) * ways_];
    for (uint32_t w = 0; w < ways_; w++) {
        if (set[w].valid && set[w].line == line) {
            set[w].lruStamp = ++stamp_;
            return &set[w].state;
        }
    }
    return nullptr;
}

const uint8_t*
CacheArray::probe(LineAddr line) const
{
    const Way* set = &arr_[uint64_t(setOf(line)) * ways_];
    for (uint32_t w = 0; w < ways_; w++)
        if (set[w].valid && set[w].line == line)
            return &set[w].state;
    return nullptr;
}

std::optional<CacheArray::Victim>
CacheArray::insert(LineAddr line, uint8_t state)
{
    Way* set = &arr_[uint64_t(setOf(line)) * ways_];
    Way* victim = nullptr;
    for (uint32_t w = 0; w < ways_; w++) {
        Way& way = set[w];
        ssim_assert(!(way.valid && way.line == line),
                    "inserting line already present");
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lruStamp < victim->lruStamp)
            victim = &way;
    }

    std::optional<Victim> evicted;
    if (victim->valid) {
        evicted = Victim{victim->line, victim->state};
        evictions_++;
    }
    victim->valid = true;
    victim->line = line;
    victim->state = state;
    victim->lruStamp = ++stamp_;
    insertions_++;
    return evicted;
}

std::optional<uint8_t>
CacheArray::invalidate(LineAddr line)
{
    Way* set = &arr_[uint64_t(setOf(line)) * ways_];
    for (uint32_t w = 0; w < ways_; w++) {
        if (set[w].valid && set[w].line == line) {
            set[w].valid = false;
            return set[w].state;
        }
    }
    return std::nullopt;
}

} // namespace ssim
