/**
 * @file
 * The chip's cache hierarchy: per-core L1Ds, per-tile inclusive L2s, a
 * shared static-NUCA L3 (one bank per tile), and a MESI-style in-cache
 * directory at the L3, all with Table II latencies.
 *
 * The model is functional-latency: each access synchronously computes its
 * latency and injects the NoC traffic it would generate. Sharer state is
 * tracked at tile (L2) granularity in a 64-bit mask, which matches the
 * 64-tile chip of Fig. 1.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/stats.h"
#include "base/types.h"
#include "mem/cache_array.h"
#include "noc/mesh.h"
#include "sim/config.h"

namespace ssim {

class MemorySystem
{
  public:
    MemorySystem(const SimConfig& cfg, Mesh& mesh, SimStats& stats);

    struct AccessResult
    {
        uint32_t latency;  ///< cycles until the core can proceed
        bool leftTile;     ///< access required a directory/L3 visit
    };

    /**
     * Perform a timed access by @p core to the line containing @p addr.
     * Injects any coherence traffic under class @p cls.
     */
    AccessResult access(CoreId core, Addr addr, bool is_write,
                        TrafficClass cls = TrafficClass::MemAcc);

    /** Home L3 bank of a line (static NUCA interleaving). */
    TileId homeOf(LineAddr line) const;

    /** Which tiles currently cache a line (for tests). */
    uint64_t sharerMask(LineAddr line) const;

    /** True if the line is present in this core's L1 (for tests). */
    bool inL1(CoreId core, LineAddr line) const;
    /** True if the line is present in this tile's L2 (for tests). */
    bool inL2(TileId tile, LineAddr line) const;
    /** True if the line is present in the L3 (for tests). */
    bool inL3(LineAddr line) const;

  private:
    // L2 line states (MESI collapsed to what the timing model needs:
    // Modified implies exclusive; everything else is Shared).
    static constexpr uint8_t kShared = 0;
    static constexpr uint8_t kModified = 1;

    struct DirEntry
    {
        uint64_t sharers = 0; ///< tile bitmask
        int16_t owner = -1;   ///< tile with Modified copy, or -1
        bool dirty = false;   ///< L3 copy newer than memory
    };

    TileId tileOf(CoreId core) const { return core / coresPerTile_; }

    /** Drop a line from every L1 of @p tile (inclusion maintenance). */
    void backInvalidateL1s(TileId tile, LineAddr line);

    /** Evict handling for an L2 victim (writeback or sharer notification). */
    void handleL2Victim(TileId tile, LineAddr line, uint8_t state,
                        TrafficClass cls);

    /** Evict a line from the L3: back-invalidate all caching tiles. */
    void handleL3Victim(LineAddr line, uint8_t, TrafficClass cls);

    /**
     * Service a miss/upgrade at the directory. Returns added latency.
     * @p needData false means this is a Shared->Modified upgrade.
     */
    uint32_t directoryVisit(TileId tile, LineAddr line, bool is_write,
                            bool need_data, TrafficClass cls);

    const SimConfig& cfg_;
    Mesh& mesh_;
    SimStats& stats_;
    uint32_t coresPerTile_;
    uint32_t ntiles_;

    std::vector<CacheArray> l1s_; ///< one per core
    std::vector<CacheArray> l2s_; ///< one per tile
    std::vector<CacheArray> l3_;  ///< one bank per tile
    std::unordered_map<LineAddr, DirEntry> dir_;
};

} // namespace ssim
