/**
 * @file
 * A set-associative tag array with LRU replacement.
 *
 * Used for the per-core L1s, per-tile L2s, and per-tile L3 banks. The
 * array tracks tags only (data lives in host memory); an optional 8-bit
 * state byte per line carries coherence state for its owner level.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/types.h"

namespace ssim {

class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity in bytes
     * @param ways associativity
     */
    CacheArray(uint64_t size_bytes, uint32_t ways);

    /**
     * Look up a line; on hit, updates LRU and returns a pointer to its
     * state byte (valid until the next insert/invalidate).
     */
    uint8_t* lookup(LineAddr line);

    /** Look up without touching LRU state (for probes). */
    const uint8_t* probe(LineAddr line) const;

    /**
     * Insert a line (must not be present). Returns the evicted victim
     * line and its state, if any.
     */
    struct Victim
    {
        LineAddr line;
        uint8_t state;
    };
    std::optional<Victim> insert(LineAddr line, uint8_t state = 0);

    /** Remove a line if present; returns its state byte. */
    std::optional<uint8_t> invalidate(LineAddr line);

    uint32_t numSets() const { return sets_; }
    uint32_t numWays() const { return ways_; }
    uint64_t numLines() const { return uint64_t(sets_) * ways_; }
    uint64_t insertions() const { return insertions_; }
    uint64_t evictions() const { return evictions_; }

  private:
    struct Way
    {
        LineAddr line = 0;
        uint64_t lruStamp = 0;
        uint8_t state = 0;
        bool valid = false;
    };

    uint32_t
    setOf(LineAddr line) const
    {
        return uint32_t(line & (sets_ - 1));
    }

    uint32_t sets_;
    uint32_t ways_;
    uint64_t stamp_ = 0;
    uint64_t insertions_ = 0;
    uint64_t evictions_ = 0;
    std::vector<Way> arr_; // sets_ * ways_, set-major
};

} // namespace ssim
